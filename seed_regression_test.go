package rfdet_test

import (
	"bytes"
	"fmt"
	"hash/fnv"
	"os"
	"runtime"
	"strconv"
	"strings"
	"testing"

	"rfdet"
	"rfdet/internal/core"
	"rfdet/internal/harness"
	"rfdet/internal/litmus"
	"rfdet/internal/trace"
	"rfdet/internal/workloads"
)

// Seed-behavior regression wall for the extent-guided diff change.
//
// These constants were captured from the pre-change runtime (full-page
// diffing) at commit 27aee6c, at GOMAXPROCS 1, 2, 4 and 8 — all identical,
// as determinism demands. Sub-page dirty tracking must be *invisible*: it
// changes which bytes the slice-end diff scans, never which modifications
// it finds, and the virtual-time model still charges vtime.DiffPage per
// snapshotted page. So outputs, virtual times AND full traces (which embed
// per-event virtual clocks) must remain bit-identical to the seed. If one
// of these values ever changes, the diff fast path altered observable
// behavior — that is a bug, not a baseline refresh.
const (
	goldenLitmusHash = uint64(0x56dfa6306050903f)

	goldenWordcountOutput = uint64(0xa96fd08b553d74e4)
	goldenWordcountVTime  = uint64(37073)
	goldenWordcountTrace  = uint64(0xd6e8467b5b0149ef)

	goldenFFTOutput = uint64(0x2c11c3233a156078)
	goldenFFTVTime  = uint64(85814)
	goldenFFTTrace  = uint64(0xf9c2d06607798849)

	goldenRaceyOutput = uint64(0x22d8e78f10322389)
	goldenRaceyVTime  = uint64(24179)

	// KV-server goldens (PR 7), captured at 4 worker threads / SizeTest /
	// DefaultServerSeed across GOMAXPROCS 1-8 × ShardCount {1,4} — all
	// identical, as the replica-divergence property demands. The state and
	// response hashes are the replica fingerprints the harness compares;
	// output/vtime/trace pin the full runtime behavior around them.
	goldenServerOutput = uint64(0x4e54dc625c3bc116)
	goldenServerVTime  = uint64(469638)
	goldenServerTrace  = uint64(0x5d3ee695ccdf7685)
	goldenServerState  = uint64(0x882c4a3e614966c9)
	goldenServerResp   = uint64(0x809ff36626efc075)
	goldenServerObs    = uint64(0x039aeb8cfba40bb8)
)

var regressionProcs = []int{1, 2, 4, 8}

// seedConfig is the workload configuration the goldens were captured with.
var seedConfig = workloads.Config{Threads: 4, Size: workloads.SizeTest}

// seedTestOptions returns the configuration the goldens were captured with,
// honoring the RFDET_SHARDS and RFDET_EPOCHSTORE environment variables so CI
// can sweep the determinism matrix across commit-monitor domain counts and
// metadata-store implementations without a test-code change. The goldens are
// independent of both axes by construction — that independence is exactly
// what the sweep asserts.
func seedTestOptions() core.Options {
	opts := core.DefaultOptions()
	if s := os.Getenv("RFDET_SHARDS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			opts.ShardCount = n
		}
	}
	if s := os.Getenv("RFDET_EPOCHSTORE"); s == "0" || s == "off" {
		opts.EpochStore = false
	}
	return opts
}

func fnvString(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

// TestSeedRegressionLitmus replays the full litmus suite under RFDet-ci and
// checks the concatenated outcome digest against the seed.
func TestSeedRegressionLitmus(t *testing.T) {
	for _, p := range regressionProcs {
		old := runtime.GOMAXPROCS(p)
		var lit string
		for _, tst := range litmus.Tests() {
			outs, err := litmus.Observe(rfdet.NewCI(), tst, 3)
			if err != nil {
				runtime.GOMAXPROCS(old)
				t.Fatalf("P=%d %s: %v", p, tst.Name, err)
			}
			lit += fmt.Sprintf("%s:%v;", tst.Name, outs)
		}
		runtime.GOMAXPROCS(old)
		if h := fnvString(lit); h != goldenLitmusHash {
			t.Fatalf("P=%d: litmus hash %#x, seed %#x — litmus outcomes changed", p, h, goldenLitmusHash)
		}
	}
}

// TestSeedRegressionTraces runs wordcount and fft traced, and racey
// untraced, 5 times at each GOMAXPROCS in {1,2,4,8} — 20 runs per workload
// — and demands the seed's exact output hashes, virtual times and trace
// digests with dirty tracking live.
func TestSeedRegressionTraces(t *testing.T) {
	repeats := 5
	if testing.Short() {
		repeats = 1
	}
	goldens := []struct {
		workload             string
		output, vtime, trace uint64
	}{
		{"wordcount", goldenWordcountOutput, goldenWordcountVTime, goldenWordcountTrace},
		{"fft", goldenFFTOutput, goldenFFTVTime, goldenFFTTrace},
	}
	opts := seedTestOptions()
	opts.Trace = true
	rt := core.New(opts)
	for _, p := range regressionProcs {
		old := runtime.GOMAXPROCS(p)
		for rep := 0; rep < repeats; rep++ {
			for _, g := range goldens {
				w, err := workloads.ByName(g.workload)
				if err != nil {
					runtime.GOMAXPROCS(old)
					t.Fatal(err)
				}
				r, tr, err := rt.RunTraced(w.Prog(seedConfig))
				if err != nil {
					runtime.GOMAXPROCS(old)
					t.Fatalf("P=%d run %d %s: %v", p, rep, g.workload, err)
				}
				if r.OutputHash != g.output || r.VirtualTime != g.vtime {
					runtime.GOMAXPROCS(old)
					t.Fatalf("P=%d run %d %s: output=%#x vtime=%d, seed output=%#x vtime=%d",
						p, rep, g.workload, r.OutputHash, r.VirtualTime, g.output, g.vtime)
				}
				if th := fnvString(tr.String()); th != g.trace {
					runtime.GOMAXPROCS(old)
					t.Fatalf("P=%d run %d %s: trace hash %#x, seed %#x — event-level behavior changed",
						p, rep, g.workload, th, g.trace)
				}
			}
			w, err := workloads.ByName("racey")
			if err != nil {
				runtime.GOMAXPROCS(old)
				t.Fatal(err)
			}
			r, err := rfdet.New(seedTestOptions()).Run(w.Prog(seedConfig))
			if err != nil {
				runtime.GOMAXPROCS(old)
				t.Fatalf("P=%d run %d racey: %v", p, rep, err)
			}
			if r.OutputHash != goldenRaceyOutput || r.VirtualTime != goldenRaceyVTime {
				runtime.GOMAXPROCS(old)
				t.Fatalf("P=%d run %d racey: output=%#x vtime=%d, seed output=%#x vtime=%d",
					p, rep, r.OutputHash, r.VirtualTime, goldenRaceyOutput, goldenRaceyVTime)
			}
		}
		runtime.GOMAXPROCS(old)
	}
}

// TestSeedRegressionServer freezes the KV-server workload like the kernel
// goldens: at every GOMAXPROCS in {1,2,4,8} (× whatever RFDET_SHARDS the CI
// matrix pins via seedTestOptions), the traced run must reproduce the exact
// output hash, virtual time, trace digest, state hash, response hash and
// full observation digest. These are the replica fingerprints: if one of
// them moves, replicas built from different checkouts would diverge.
func TestSeedRegressionServer(t *testing.T) {
	w, err := workloads.ByName("server")
	if err != nil {
		t.Fatal(err)
	}
	opts := seedTestOptions()
	opts.Trace = true
	rt := core.New(opts)
	for _, p := range regressionProcs {
		old := runtime.GOMAXPROCS(p)
		r, tr, err := rt.RunTraced(w.Prog(seedConfig))
		runtime.GOMAXPROCS(old)
		if err != nil {
			t.Fatalf("P=%d: %v", p, err)
		}
		if r.OutputHash != goldenServerOutput || r.VirtualTime != goldenServerVTime {
			t.Fatalf("P=%d: output=%#x vtime=%d, seed output=%#x vtime=%d",
				p, r.OutputHash, r.VirtualTime, goldenServerOutput, goldenServerVTime)
		}
		if th := fnvString(tr.String()); th != goldenServerTrace {
			t.Fatalf("P=%d: trace hash %#x, seed %#x — server event-level behavior changed",
				p, th, goldenServerTrace)
		}
		sum, err := workloads.SummarizeServer(r)
		if err != nil {
			t.Fatal(err)
		}
		if sum.StateHash != goldenServerState || sum.ResponseHash != goldenServerResp {
			t.Fatalf("P=%d: state=%#x resp=%#x, seed state=%#x resp=%#x",
				p, sum.StateHash, sum.ResponseHash, goldenServerState, goldenServerResp)
		}
		if d := r.ObservationsDigest(); d != goldenServerObs {
			t.Fatalf("P=%d: observation digest %#x, seed %#x", p, d, goldenServerObs)
		}
	}
}

// TestSeedRegressionServerReplicas is the CI replica-divergence matrix body:
// k=3 replicas of the golden request log across the default, full-page-diff
// and uncoalesced stacks — at the ambient GOMAXPROCS and the RFDET_SHARDS
// domain count the CI matrix sweeps — must agree with each other AND with
// the pinned golden fingerprints.
func TestSeedRegressionServerReplicas(t *testing.T) {
	mk := func(name string, tweak func(*core.Options)) harness.ReplicaVariant {
		o := seedTestOptions()
		tweak(&o)
		return harness.ReplicaVariant{Name: name, Opts: o}
	}
	variants := []harness.ReplicaVariant{
		mk("default", func(*core.Options) {}),
		mk("fullpagediff", func(o *core.Options) { o.FullPageDiff = true }),
		mk("nocoalesce", func(o *core.Options) { o.NoCoalesce = true }),
	}
	rep := harness.RunServerReplicas(seedConfig, workloads.DefaultServerSeed, variants)
	if rep.Divergent() {
		t.Fatalf("replicas diverged:\n%s", strings.Join(rep.Divergences, "\n"))
	}
	for i, run := range rep.Runs {
		if run.Summary.StateHash != goldenServerState || run.Summary.ResponseHash != goldenServerResp {
			t.Fatalf("replica %d (%s): state=%#x resp=%#x, seed state=%#x resp=%#x",
				i, run.Variant, run.Summary.StateHash, run.Summary.ResponseHash,
				goldenServerState, goldenServerResp)
		}
		if run.VirtualTime != goldenServerVTime {
			t.Fatalf("replica %d (%s): vtime %d, seed %d", i, run.Variant, run.VirtualTime, goldenServerVTime)
		}
		if run.ObsDigest != goldenServerObs {
			t.Fatalf("replica %d (%s): observation digest %#x, seed %#x",
				i, run.Variant, run.ObsDigest, goldenServerObs)
		}
	}
}

// TestSeedRegressionRaceDetectMatches is the loop-closer for happens-before
// race detection: running the exact seed workloads with RaceDetect ON must
// hit the exact same goldens — output, virtual time and deterministic trace
// digest — proving read tracking and access recording never touch the
// determinism surface. The race reports themselves must be present.
func TestSeedRegressionRaceDetectMatches(t *testing.T) {
	opts := core.DefaultOptions()
	opts.Trace = true
	opts.RaceDetect = true
	rt := core.New(opts)
	goldens := []struct {
		workload             string
		output, vtime, trace uint64
	}{
		{"wordcount", goldenWordcountOutput, goldenWordcountVTime, goldenWordcountTrace},
		{"fft", goldenFFTOutput, goldenFFTVTime, goldenFFTTrace},
	}
	for _, g := range goldens {
		w, err := workloads.ByName(g.workload)
		if err != nil {
			t.Fatal(err)
		}
		r, tr, err := rt.RunTraced(w.Prog(seedConfig))
		if err != nil {
			t.Fatal(err)
		}
		if r.OutputHash != g.output || r.VirtualTime != g.vtime {
			t.Fatalf("RaceDetect %s: output=%#x vtime=%d, seed output=%#x vtime=%d",
				g.workload, r.OutputHash, r.VirtualTime, g.output, g.vtime)
		}
		if th := fnvString(tr.String()); th != g.trace {
			t.Fatalf("RaceDetect %s: trace hash %#x, seed %#x — detection perturbed the schedule",
				g.workload, th, g.trace)
		}
		if r.Races == nil {
			t.Fatalf("RaceDetect %s: race report missing", g.workload)
		}
		if r.Stats.RaceRecords == 0 {
			t.Fatalf("RaceDetect %s: no accesses recorded", g.workload)
		}
	}
}

// TestSeedRegressionTraceStabilityUnderLoad re-runs fft traced many times in
// a tight loop and demands every trace digest equals the seed's. This is the
// regression test for the exit/join turn-handoff race: threadExit used to
// flip the exiting thread to Exited — which releases its deterministic turn —
// *before* waking its joiner, leaving a window where a third thread whose
// Kendo clock exceeded the still-Blocked joiner's could pass WaitForTurn and
// slip its operation in. The visible symptom was the joiner's final join
// event occasionally recording a different Kendo clock (blocked vs
// non-blocked path), a sub-percent flake that only dense repetition exposes.
func TestSeedRegressionTraceStabilityUnderLoad(t *testing.T) {
	runs := 200
	if testing.Short() {
		runs = 20
	}
	opts := core.DefaultOptions()
	opts.Trace = true
	rt := core.New(opts)
	w, err := workloads.ByName("fft")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < runs; i++ {
		r, tr, err := rt.RunTraced(w.Prog(seedConfig))
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		if r.OutputHash != goldenFFTOutput || r.VirtualTime != goldenFFTVTime {
			t.Fatalf("run %d: output=%#x vtime=%d, seed output=%#x vtime=%d",
				i, r.OutputHash, r.VirtualTime, goldenFFTOutput, goldenFFTVTime)
		}
		if th := fnvString(tr.String()); th != goldenFFTTrace {
			t.Fatalf("run %d: trace hash %#x, seed %#x — exit/join turn handoff raced", i, th, goldenFFTTrace)
		}
	}
}

// TestSeedRegressionFullPageDiffMatches closes the loop: the explicit
// FullPageDiff escape hatch (which reproduces the seed's diffing verbatim)
// must hit the same goldens — proving the goldens test the seed behavior,
// not whatever the current default happens to be.
func TestSeedRegressionFullPageDiffMatches(t *testing.T) {
	opts := core.DefaultOptions()
	opts.Trace = true
	opts.FullPageDiff = true
	rt := core.New(opts)
	w, err := workloads.ByName("wordcount")
	if err != nil {
		t.Fatal(err)
	}
	r, tr, err := rt.RunTraced(w.Prog(seedConfig))
	if err != nil {
		t.Fatal(err)
	}
	if r.OutputHash != goldenWordcountOutput || r.VirtualTime != goldenWordcountVTime {
		t.Fatalf("FullPageDiff: output=%#x vtime=%d, seed output=%#x vtime=%d",
			r.OutputHash, r.VirtualTime, goldenWordcountOutput, goldenWordcountVTime)
	}
	if th := fnvString(tr.String()); th != goldenWordcountTrace {
		t.Fatalf("FullPageDiff: trace hash %#x, seed %#x", th, goldenWordcountTrace)
	}
	// And under full-page diffing no bytes are ever skipped.
	if r.Stats.DiffBytesSkipped != 0 {
		t.Fatalf("FullPageDiff skipped %d bytes", r.Stats.DiffBytesSkipped)
	}
}

// TestSeedRegressionNoCoalesceMatches is the same loop-closer for coalesced
// write-plan propagation: NoCoalesce reproduces the seed's one-run-at-a-time
// application verbatim, and it must hit the exact same goldens as the
// coalescing default — demonstrating that plan application is observationally
// equivalent, not merely deterministic on its own.
func TestSeedRegressionNoCoalesceMatches(t *testing.T) {
	opts := core.DefaultOptions()
	opts.Trace = true
	opts.NoCoalesce = true
	rt := core.New(opts)
	w, err := workloads.ByName("wordcount")
	if err != nil {
		t.Fatal(err)
	}
	r, tr, err := rt.RunTraced(w.Prog(seedConfig))
	if err != nil {
		t.Fatal(err)
	}
	if r.OutputHash != goldenWordcountOutput || r.VirtualTime != goldenWordcountVTime {
		t.Fatalf("NoCoalesce: output=%#x vtime=%d, seed output=%#x vtime=%d",
			r.OutputHash, r.VirtualTime, goldenWordcountOutput, goldenWordcountVTime)
	}
	if th := fnvString(tr.String()); th != goldenWordcountTrace {
		t.Fatalf("NoCoalesce: trace hash %#x, seed %#x", th, goldenWordcountTrace)
	}
	// With coalescing off no plan is ever built or shared.
	if r.Stats.BytesCoalescedAway != 0 || r.Stats.PlanReuse != 0 {
		t.Fatalf("NoCoalesce still coalesced: %d bytes away, %d plan reuses",
			r.Stats.BytesCoalescedAway, r.Stats.PlanReuse)
	}
}

// TestSeedRegressionPhaseTraceMatches is the loop-closer for phase-level
// observability: running the exact seed workload with phase tracing ON must
// hit the exact same goldens — output, virtual time and deterministic trace
// digest — proving wall-clock span recording never touches the determinism
// surface. The recorded spans themselves must still reconcile with the Stats
// counters and export as valid Chrome-trace JSON.
func TestSeedRegressionPhaseTraceMatches(t *testing.T) {
	opts := core.DefaultOptions()
	opts.Trace = true
	opts.PhaseTrace = true
	rt := core.New(opts)
	w, err := workloads.ByName("wordcount")
	if err != nil {
		t.Fatal(err)
	}
	r, tr, err := rt.RunTraced(w.Prog(seedConfig))
	if err != nil {
		t.Fatal(err)
	}
	if r.OutputHash != goldenWordcountOutput || r.VirtualTime != goldenWordcountVTime {
		t.Fatalf("PhaseTrace: output=%#x vtime=%d, seed output=%#x vtime=%d",
			r.OutputHash, r.VirtualTime, goldenWordcountOutput, goldenWordcountVTime)
	}
	if th := fnvString(tr.String()); th != goldenWordcountTrace {
		t.Fatalf("PhaseTrace: trace hash %#x, seed %#x", th, goldenWordcountTrace)
	}
	if r.Phases == nil {
		t.Fatal("phase report missing")
	}
	tot := r.Phases.PhaseTotals()
	if got := uint64(tot[trace.PhaseDiff]); got != r.Stats.DiffNanos {
		t.Fatalf("diff span total %d != Stats.DiffNanos %d", got, r.Stats.DiffNanos)
	}
	if got := uint64(tot[trace.PhaseApply] + tot[trace.PhasePremerge]); got != r.Stats.ApplyNanos {
		t.Fatalf("apply+premerge span total %d != Stats.ApplyNanos %d", got, r.Stats.ApplyNanos)
	}
	var buf bytes.Buffer
	if err := r.Phases.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	if err := trace.ValidateChrome(buf.Bytes()); err != nil {
		t.Fatal(err)
	}
}

// TestSeedRegressionShardCounts replays the seed goldens once per
// commit-monitor domain count, at several GOMAXPROCS each: the sharded
// monitor (default four domains) and the seed's single global domain must
// both hit the exact pre-sharding outputs, virtual times and trace digests.
// This is the in-tree half of the CI determinism matrix (scripts/verify.sh
// additionally sweeps RFDET_SHARDS over the whole seed-regression wall).
func TestSeedRegressionShardCounts(t *testing.T) {
	goldens := []struct {
		workload             string
		output, vtime, trace uint64
	}{
		{"wordcount", goldenWordcountOutput, goldenWordcountVTime, goldenWordcountTrace},
		{"fft", goldenFFTOutput, goldenFFTVTime, goldenFFTTrace},
	}
	for _, shards := range []int{1, 4} {
		opts := core.DefaultOptions()
		opts.ShardCount = shards
		opts.Trace = true
		rt := core.New(opts)
		for _, p := range []int{1, 4, 8} {
			old := runtime.GOMAXPROCS(p)
			for _, g := range goldens {
				w, err := workloads.ByName(g.workload)
				if err != nil {
					runtime.GOMAXPROCS(old)
					t.Fatal(err)
				}
				r, tr, err := rt.RunTraced(w.Prog(seedConfig))
				if err != nil {
					runtime.GOMAXPROCS(old)
					t.Fatalf("shards=%d P=%d %s: %v", shards, p, g.workload, err)
				}
				if r.OutputHash != g.output || r.VirtualTime != g.vtime {
					runtime.GOMAXPROCS(old)
					t.Fatalf("shards=%d P=%d %s: output=%#x vtime=%d, seed output=%#x vtime=%d",
						shards, p, g.workload, r.OutputHash, r.VirtualTime, g.output, g.vtime)
				}
				if th := fnvString(tr.String()); th != g.trace {
					runtime.GOMAXPROCS(old)
					t.Fatalf("shards=%d P=%d %s: trace hash %#x, seed %#x — sharding changed event-level behavior",
						shards, p, g.workload, th, g.trace)
				}
				if want := uint64(shards); r.Stats.MonitorShards != want {
					runtime.GOMAXPROCS(old)
					t.Fatalf("shards=%d: Stats.MonitorShards = %d", shards, r.Stats.MonitorShards)
				}
			}
			runtime.GOMAXPROCS(old)
		}
	}
}

// TestSeedRegressionEpochStoreMatches closes the loop on the metadata-store
// axis: the epoch store (the DefaultOptions seed path, which every golden
// above already exercises) and the original map store must both reproduce
// the seed goldens bit-for-bit — output, virtual time AND event trace — at
// every GOMAXPROCS. The metadata space is pure bookkeeping: which store
// reclaims a collected slice's bytes must never leak into a deterministic
// observable.
func TestSeedRegressionEpochStoreMatches(t *testing.T) {
	goldens := []struct {
		workload             string
		output, vtime, trace uint64
	}{
		{"wordcount", goldenWordcountOutput, goldenWordcountVTime, goldenWordcountTrace},
		{"fft", goldenFFTOutput, goldenFFTVTime, goldenFFTTrace},
	}
	for _, epoch := range []bool{false, true} {
		opts := core.DefaultOptions()
		opts.EpochStore = epoch
		opts.Trace = true
		rt := core.New(opts)
		for _, p := range []int{1, 4, 8} {
			old := runtime.GOMAXPROCS(p)
			for _, g := range goldens {
				w, err := workloads.ByName(g.workload)
				if err != nil {
					runtime.GOMAXPROCS(old)
					t.Fatal(err)
				}
				r, tr, err := rt.RunTraced(w.Prog(seedConfig))
				if err != nil {
					runtime.GOMAXPROCS(old)
					t.Fatalf("epoch=%v P=%d %s: %v", epoch, p, g.workload, err)
				}
				if r.OutputHash != g.output || r.VirtualTime != g.vtime {
					runtime.GOMAXPROCS(old)
					t.Fatalf("epoch=%v P=%d %s: output=%#x vtime=%d, seed output=%#x vtime=%d",
						epoch, p, g.workload, r.OutputHash, r.VirtualTime, g.output, g.vtime)
				}
				if th := fnvString(tr.String()); th != g.trace {
					runtime.GOMAXPROCS(old)
					t.Fatalf("epoch=%v P=%d %s: trace hash %#x, seed %#x — the store changed event-level behavior",
						epoch, p, g.workload, th, g.trace)
				}
			}
			runtime.GOMAXPROCS(old)
		}
	}
}
