// Package rfdet is a Go reproduction of "Efficient Deterministic
// Multithreading Without Global Barriers" (Lu, Zhou, Bergan, Wang,
// PPoPP 2014): the RFDet runtime, which executes multithreaded programs
// deterministically — even in the presence of data races — using
// deterministic lazy release consistency (DLRC) instead of the global
// barriers of prior strong-DMT systems.
//
// # Programming model
//
// Programs are written against the Thread interface: a pthreads-like API
// over a simulated shared address space. Memory is addressed with Addr;
// mutexes, condition variables and barriers are identified by the address of
// the application object, exactly as in pthreads. The same program runs
// unchanged on four runtimes:
//
//   - NewCI / NewPF: RFDet with the compile-time-instrumentation or
//     page-protection modification monitor (the paper's RFDet-ci/RFDet-pf);
//   - NewDThreads: the DThreads-style global-fence baseline;
//   - NewCoreDet: a CoreDet/DMP-style quantum-barrier baseline;
//   - NewPThreads: conventional nondeterministic multithreading.
//
// # Quick start
//
//	rt := rfdet.NewCI()
//	rep, err := rt.Run(func(t rfdet.Thread) {
//	    counter := t.Malloc(8)
//	    mu := rfdet.Addr(64) // any address can back a mutex
//	    var ids []rfdet.ThreadID
//	    for i := 0; i < 4; i++ {
//	        ids = append(ids, t.Spawn(func(t rfdet.Thread) {
//	            t.Lock(mu)
//	            t.Store64(counter, t.Load64(counter)+1)
//	            t.Unlock(mu)
//	        }))
//	    }
//	    for _, id := range ids {
//	        t.Join(id)
//	    }
//	    t.Observe(t.Load64(counter))
//	})
//
// rep.OutputHash is identical on every run: the runtime guarantees that the
// program's observations and final memory are a pure function of its input.
//
// # Determinism vs host performance
//
// The deterministic results (outputs, virtual times, trace hashes) are
// independent of host-side execution strategy. Internal fast paths —
// off-monitor diffing and application, sub-page dirty extents, coalesced
// last-writer-wins write plans shared across blocked waiters, the
// epoch-segment metadata store with arena-interned payloads — change only
// wall-clock time; each has an Options escape hatch (FullPageDiff,
// NoCoalesce, EpochStore=false, ...) that forces the seed path, and
// equivalence is pinned by the fuzz and seed-regression walls.
package rfdet

import (
	"rfdet/internal/api"
	"rfdet/internal/core"
	"rfdet/internal/dthreads"
	"rfdet/internal/pthreads"
	"rfdet/internal/racecheck"
)

// Re-exported programming-model types; see internal/api for documentation.
type (
	// Addr is a virtual address in the simulated shared address space.
	Addr = api.Addr
	// Thread is the per-thread handle for all shared-state interaction.
	Thread = api.Thread
	// ThreadID identifies a logical thread.
	ThreadID = api.ThreadID
	// ThreadFunc is the body of a logical thread.
	ThreadFunc = api.ThreadFunc
	// Runtime executes programs.
	Runtime = api.Runtime
	// Report is the result of one execution.
	Report = api.Report
	// Stats holds per-execution profiling counters.
	Stats = api.Stats
)

// Options configures an RFDet runtime; see internal/core.
type Options = core.Options

// Monitor selects the modification monitor.
type Monitor = core.Monitor

// Monitor kinds.
const (
	// MonitorCI is the compile-time-instrumentation-style monitor
	// (RFDet-ci).
	MonitorCI = core.MonitorCI
	// MonitorPF is the page-protection monitor (RFDet-pf).
	MonitorPF = core.MonitorPF
)

// New returns an RFDet runtime with explicit options.
func New(opts Options) Runtime { return core.New(opts) }

// DefaultOptions returns the paper's best-performing RFDet-ci configuration
// (all optimizations on) — the options NewCI runs with. Callers that need
// one tweak start from here instead of reconstructing the option set.
func DefaultOptions() Options { return core.DefaultOptions() }

// NewCI returns RFDet-ci with all optimizations enabled — the paper's
// best-performing configuration.
func NewCI() Runtime { return core.New(core.DefaultOptions()) }

// NewPF returns RFDet-pf (page-protection monitoring) with all optimizations
// enabled.
func NewPF() Runtime {
	opts := core.DefaultOptions()
	opts.Monitor = core.MonitorPF
	return core.New(opts)
}

// NewCIRace returns RFDet-ci with the happens-before race detector enabled:
// Report.Races carries the deterministic race report. Detection is strictly
// observational — outputs, virtual times and traces are identical to NewCI's.
func NewCIRace() Runtime {
	opts := core.DefaultOptions()
	opts.RaceDetect = true
	return core.New(opts)
}

// Profile is a recorded relaxation profile: the sync-var addresses a
// race-detecting run observed as thread-local, plus the run's race-report
// hash as a stability fingerprint. See racecheck.Profile.
type Profile = racecheck.Profile

// MergeProfiles stability-merges two relaxation profiles recorded from
// independent runs of the same workload: the result keeps only addresses
// thread-local in both runs, and errors if the runs' race reports disagree
// (the workload is not stable enough to profile). See racecheck.MergeStable.
func MergeProfiles(a, b *Profile) (*Profile, error) { return racecheck.MergeStable(a, b) }

// NewCIRelaxed returns RFDet-ci with race-aware ordering relaxation
// (Options.RaceRelaxed) enabled, driven by the given relaxation profile
// (nil enables propagation elision only). Record a profile with NewCIRace —
// Report.RelaxProfile — and stability-merge at least two runs with
// MergeProfiles before replaying with it. Deterministic observables are
// identical to NewCI's for race-free programs; contradicted profile entries
// fall back to full ordering (Stats.RelaxUnsafeFallbacks).
func NewCIRelaxed(p *Profile) Runtime {
	opts := core.DefaultOptions()
	opts.RaceRelaxed = true
	opts.RelaxProfile = p
	return core.New(opts)
}

// NewDThreads returns the DThreads-style global-fence baseline.
func NewDThreads() Runtime { return dthreads.New() }

// NewCoreDet returns a CoreDet/DMP-style quantum-barrier baseline with the
// given quantum in logical instructions.
func NewCoreDet(quantum uint64) Runtime { return dthreads.NewQuantum(quantum) }

// NewRCDC returns an RCDC-style baseline (§2): quantum barriers plus the
// same-thread lock fast path — the closest prior system to DLRC, which §3.1
// contrasts against (two threads still cannot hand a lock over without a
// global barrier).
func NewRCDC(quantum uint64) Runtime { return dthreads.NewRCDC(quantum) }

// NewPThreads returns the conventional nondeterministic baseline.
func NewPThreads() Runtime { return pthreads.New() }
